//! End-to-end test of the `pasm-server` simulation service over localhost:
//! a real TCP client submits jobs, polls them to completion, exercises the
//! cache and the bounded queue, and drains the server (ISSUE 2 acceptance).

use pasm_server::{Server, ServerConfig};
use pasm_util::{json, Json};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Minimal HTTP/1.1 client: one request per connection, like the server.
/// Returns status, headers, and the raw body (`/metrics` is not JSON).
fn request_raw(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {raw:?}"));
    let (head, payload) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, head.to_string(), payload.to_string())
}

/// JSON-body variant of [`request_raw`] (every endpoint except `/metrics`).
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Json) {
    let (status, _, payload) = request_raw(addr, method, path, body);
    let parsed = json::parse(&payload).unwrap_or_else(|e| panic!("bad JSON body {payload:?}: {e}"));
    (status, parsed)
}

fn get(addr: SocketAddr, path: &str) -> (u16, Json) {
    request(addr, "GET", path, None)
}

fn submit(addr: SocketAddr, body: &str) -> (u16, Json) {
    request(addr, "POST", "/submit", Some(body))
}

fn job_id(resp: &Json) -> u64 {
    resp.get("job_id")
        .and_then(Json::as_u64)
        .expect("job_id in response")
}

fn status_str(resp: &Json) -> String {
    resp.get("status")
        .and_then(Json::as_str)
        .expect("status in response")
        .to_string()
}

/// Poll `/status/<id>` until the job is terminal.
fn await_terminal(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (code, body) = get(addr, &format!("/status/{id}"));
        assert_eq!(code, 200, "status of known job: {body:?}");
        match status_str(&body).as_str() {
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {id} did not finish in time");
                std::thread::sleep(Duration::from_millis(5));
            }
            _ => return body,
        }
    }
}

fn start(workers: usize, queue_depth: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth,
        ..ServerConfig::default()
    })
    .expect("server starts")
}

#[test]
fn batch_of_jobs_completes_across_workers() {
    let mut server = start(4, 256);
    let addr = server.addr();

    // 100+ distinct matmul jobs across all four modes.
    let mut ids = Vec::new();
    let mut expected_done = 0u64;
    for round in 0..26 {
        for mode in ["serial", "simd", "mimd", "smimd"] {
            let n = 4 + 4 * (round % 4); // 4, 8, 12, 16 — p=4 divides all
            let extra = round / 4;
            let body =
                format!(r#"{{"mode":"{mode}","n":{n},"p":4,"extra_muls":{extra},"seed":77}}"#);
            let (code, resp) = submit(addr, &body);
            assert!(
                code == 202 || code == 200,
                "submit accepted: {code} {resp:?}"
            );
            ids.push(job_id(&resp));
            expected_done += 1;
        }
    }
    assert!(ids.len() >= 100, "submitted {} jobs", ids.len());

    for &id in &ids {
        let st = await_terminal(addr, id);
        assert_eq!(status_str(&st), "done", "job {id}: {st:?}");
        let (code, result) = get(addr, &format!("/result/{id}"));
        assert_eq!(code, 200, "result of done job: {result:?}");
        let res = result.get("result").expect("result payload");
        assert!(res.get("cycles").and_then(Json::as_u64).unwrap() > 0);
        let checksum = res
            .get("c_checksum")
            .and_then(Json::as_str)
            .expect("hex checksum");
        assert_eq!(checksum.len(), 16, "fixed-width hex: {checksum:?}");
    }

    let (code, stats) = get(addr, "/stats");
    assert_eq!(code, 200);
    assert_eq!(
        stats.get("completed").and_then(Json::as_u64).unwrap(),
        expected_done
    );
    assert_eq!(stats.get("failed").and_then(Json::as_u64).unwrap(), 0);
    let recent = stats
        .get("recent")
        .and_then(Json::as_arr)
        .expect("recent JSONL lines");
    assert!(!recent.is_empty(), "stats carries per-job JSONL lines");
    // Each recent entry is itself a valid JSON object with the accounting fields.
    let line = json::parse(recent[0].as_str().unwrap()).expect("recent line is JSON");
    for field in ["job_id", "mode", "n", "p", "cycles", "wall_ms", "cache"] {
        assert!(
            line.get(field).is_some(),
            "JSONL line has `{field}`: {line:?}"
        );
    }

    let (code, health) = get(addr, "/healthz");
    assert_eq!(code, 200);
    assert_eq!(health.get("workers").and_then(Json::as_u64).unwrap(), 4);

    server.shutdown();
}

#[test]
fn duplicate_submission_is_served_from_cache() {
    let mut server = start(2, 64);
    let addr = server.addr();
    let body = r#"{"mode":"smimd","n":16,"p":4,"seed":4242}"#;

    let (code, first) = submit(addr, body);
    assert_eq!(code, 202, "first submission simulates: {first:?}");
    let first_id = job_id(&first);
    let st = await_terminal(addr, first_id);
    assert_eq!(status_str(&st), "done");
    assert_eq!(st.get("cached").and_then(Json::as_bool), Some(false));

    let (_, stats) = get(addr, "/stats");
    let hits_before = stats
        .get("cache")
        .unwrap()
        .get("hits")
        .and_then(Json::as_u64)
        .unwrap();

    // Identical key → served synchronously from the cache, no queueing.
    let (code, second) = submit(addr, body);
    assert_eq!(code, 200, "cache hit completes at submit time: {second:?}");
    assert_eq!(status_str(&second), "done");
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    assert_ne!(job_id(&second), first_id, "a fresh job id even on a hit");
    assert_eq!(
        second.get("key").and_then(Json::as_str),
        first.get("key").and_then(Json::as_str),
        "same content fingerprint"
    );

    let (_, stats) = get(addr, "/stats");
    let hits_after = stats
        .get("cache")
        .unwrap()
        .get("hits")
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(hits_after, hits_before + 1, "hit counter incremented");

    // Both results are byte-identical (deterministic simulator).
    let (_, r1) = get(addr, &format!("/result/{first_id}"));
    let (_, r2) = get(addr, &format!("/result/{}", job_id(&second)));
    assert_eq!(
        r1.get("result").unwrap().dump(),
        r2.get("result").unwrap().dump()
    );

    server.shutdown();
}

#[test]
fn full_queue_rejects_with_queue_full() {
    // One worker, tiny queue, big jobs: the queue must saturate.
    let mut server = start(1, 2);
    let addr = server.addr();

    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for seed in 0..32 {
        // Distinct seeds defeat the cache; n=48 keeps each job slow enough
        // for the queue to fill faster than one worker drains it.
        let body = format!(r#"{{"mode":"mimd","n":48,"p":4,"seed":{seed}}}"#);
        let (code, resp) = submit(addr, &body);
        match code {
            202 => accepted.push(job_id(&resp)),
            429 => {
                assert_eq!(resp.get("error").and_then(Json::as_str), Some("queue_full"));
                assert_eq!(resp.get("queue_depth").and_then(Json::as_u64), Some(2));
                rejected += 1;
            }
            other => panic!("unexpected status {other}: {resp:?}"),
        }
    }
    assert!(rejected > 0, "saturated queue pushed back");
    assert!(!accepted.is_empty());

    // Every accepted job still completes.
    for &id in &accepted {
        assert_eq!(status_str(&await_terminal(addr, id)), "done");
    }
    let (_, stats) = get(addr, "/stats");
    assert_eq!(
        stats
            .get("rejected_queue_full")
            .and_then(Json::as_u64)
            .unwrap(),
        rejected
    );

    server.shutdown();
}

#[test]
fn shutdown_drains_admitted_jobs() {
    let mut server = start(2, 64);
    let addr = server.addr();

    let mut accepted = 0u64;
    for seed in 100..116 {
        let body = format!(r#"{{"mode":"simd","n":32,"p":4,"seed":{seed}}}"#);
        let (code, _) = submit(addr, &body);
        assert_eq!(code, 202);
        accepted += 1;
    }

    // Drain immediately: shutdown must not return until every admitted job
    // has been simulated by the pool.
    server.shutdown();
    assert!(server.all_jobs_terminal(), "no job left queued or running");
    let stats = server.snapshot();
    assert_eq!(
        stats.get("completed").and_then(Json::as_u64).unwrap(),
        accepted,
        "all admitted jobs completed during drain: {stats:?}"
    );
    // The listener is gone: new connections are refused.
    assert!(TcpStream::connect(addr).is_err(), "accept loop exited");
}

#[test]
fn metrics_serve_valid_exposition_text_under_load() {
    let mut server = start(2, 64);
    let addr = server.addr();

    // Load: distinct jobs plus a repeated one so both the cold and the hit
    // latency histograms have observations; probe /metrics while jobs are
    // still in flight to check it serves concurrently with simulation.
    let mut ids = Vec::new();
    for seed in 0..8 {
        let body = format!(r#"{{"mode":"simd","n":16,"p":4,"seed":{seed}}}"#);
        let (code, resp) = submit(addr, &body);
        assert!(code == 202 || code == 200);
        ids.push(job_id(&resp));
        let (code, _, _) = request_raw(addr, "GET", "/metrics", None);
        assert_eq!(code, 200, "/metrics during load");
    }
    for &id in &ids {
        assert_eq!(status_str(&await_terminal(addr, id)), "done");
    }
    let (code, repeat) = submit(addr, r#"{"mode":"simd","n":16,"p":4,"seed":0}"#);
    assert_eq!(code, 200, "repeat is a cache hit: {repeat:?}");

    let (code, head, text) = request_raw(addr, "GET", "/metrics", None);
    assert_eq!(code, 200);
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: text/plain; version=0.0.4"),
        "exposition content type: {head:?}"
    );

    // Every line is a HELP/TYPE comment or `name[{labels}] value` with a
    // numeric value — the Prometheus text exposition grammar.
    assert!(!text.is_empty() && text.ends_with('\n'));
    for line in text.lines() {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("malformed sample line: {line:?}"));
        assert!(!name.is_empty(), "empty metric name: {line:?}");
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric sample value: {line:?}"
        );
    }

    let sample = |name: &str| -> f64 {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("metric {name} not exposed"))
            .parse()
            .expect("numeric sample")
    };
    assert_eq!(sample("pasm_jobs_completed_total"), 9.0);
    assert_eq!(sample("pasm_jobs_failed_total"), 0.0);
    assert!(sample("pasm_cache_hits_total") >= 1.0);
    assert!(sample("pasm_sim_cycles_total") > 0.0);
    assert_eq!(sample("pasm_workers"), 2.0);

    // Histograms split by cache outcome: 8 cold runs, at least one hit.
    assert_eq!(sample(r#"pasm_job_wall_ms_count{kind="cold"}"#), 8.0);
    assert!(sample(r#"pasm_job_wall_ms_count{kind="hit"}"#) >= 1.0);

    // The aggregated simulation buckets carry the SIMD signature: compute
    // and barrier_wait cycles both nonzero.
    assert!(sample(r#"pasm_sim_cycle_bucket_total{bucket="compute"}"#) > 0.0);
    assert!(sample(r#"pasm_sim_cycle_bucket_total{bucket="barrier_wait"}"#) > 0.0);

    // /stats mirrors the split accounting (satellite: cold vs hit latency).
    let (_, stats) = get(addr, "/stats");
    let latency = stats.get("latency").expect("latency block");
    let cold = latency.get("cold").unwrap();
    let hit = latency.get("hit").unwrap();
    assert_eq!(cold.get("count").and_then(Json::as_u64), Some(8));
    assert!(hit.get("count").and_then(Json::as_u64).unwrap() >= 1);
    // A recent JSONL line separates cold from hit wall time.
    let recent = stats.get("recent").and_then(Json::as_arr).unwrap();
    let line = json::parse(recent.last().unwrap().as_str().unwrap()).unwrap();
    assert!(
        line.get("cold_wall_ms").is_some() && line.get("hit_wall_ms").is_some(),
        "JSONL line carries the cold/hit split: {line:?}"
    );

    server.shutdown();
}

#[test]
fn cancel_expire_and_error_paths() {
    let mut server = start(1, 16);
    let addr = server.addr();

    // Occupy the single worker with a chain of slow jobs.
    for seed in 0..4 {
        let body = format!(r#"{{"mode":"mimd","n":48,"p":4,"seed":{seed}}}"#);
        submit(addr, &body);
    }

    // A queued job with an already-expired deadline is dropped unrun.
    let (code, doomed) = submit(
        addr,
        r#"{"mode":"simd","n":32,"p":4,"seed":900,"deadline_ms":0}"#,
    );
    assert_eq!(code, 202);
    let doomed_id = job_id(&doomed);

    // A queued job can be canceled while it waits.
    let (code, victim) = submit(addr, r#"{"mode":"simd","n":32,"p":4,"seed":901}"#);
    assert_eq!(code, 202);
    let victim_id = job_id(&victim);
    let (code, canceled) = request(addr, "POST", &format!("/cancel/{victim_id}"), None);
    assert_eq!(code, 200, "queued job cancels: {canceled:?}");
    assert_eq!(status_str(&canceled), "canceled");
    let (code, gone) = get(addr, &format!("/result/{victim_id}"));
    assert_eq!(code, 409, "canceled job has no result: {gone:?}");

    assert_eq!(status_str(&await_terminal(addr, doomed_id)), "expired");

    // Client errors: bad body, unknown mode, unknown job, bad method.
    let (code, resp) = submit(addr, "not json");
    assert_eq!(code, 400, "{resp:?}");
    let (code, resp) = submit(addr, r#"{"mode":"warp","n":8}"#);
    assert_eq!(code, 400, "{resp:?}");
    let (code, resp) = get(addr, "/status/999999");
    assert_eq!(code, 404, "{resp:?}");
    let (code, resp) = request(addr, "POST", "/healthz", None);
    assert_eq!(code, 405, "{resp:?}");
    let (code, resp) = get(addr, "/nope");
    assert_eq!(code, 404, "{resp:?}");

    server.shutdown();
}
