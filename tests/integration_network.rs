//! Cross-crate network tests: the Extra-Stage Cube under the full machine —
//! fault injection, reconfiguration, and end-to-end correctness on a degraded
//! network.

use pasm::{Machine, MachineConfig};
use pasm_prog::matmul::select_vm;
use pasm_prog::{Layout, Matrix};

#[test]
fn matmul_survives_an_interior_stage_fault() {
    // Break a box in an interior stage, reconfigure per the ESC rules, and run
    // the full S/MIMD matrix multiplication over the degraded network.
    let cfg = MachineConfig::prototype();
    let params = pasm::Params::new(16, 4);
    let a = Matrix::uniform(16, 21);
    let b = Matrix::uniform(16, 22);

    let mut machine = Machine::new(cfg.clone());
    machine.network_mut().set_fault(2, 1, true);
    machine.network_mut().reconfigure_for_faults();
    assert!(machine.network_mut().extra_enabled());

    let vm = select_vm(&cfg, 4);
    let layout = Layout::parallel(16, 4);
    layout.load(&mut machine, &vm.pes, &a, &b);
    machine
        .connect_ring(&vm.pes)
        .expect("ring must route around the fault");
    let pe_prog = pasm_prog::matmul::mimd::pe_program(params, pasm_prog::CommSync::Barrier);
    for &pe in &vm.pes {
        machine.load_pe_program(pe, pe_prog.clone());
    }
    machine.load_mc_program(
        vm.mcs[0],
        pasm_prog::matmul::mimd::mc_program(params, pasm_prog::CommSync::Barrier, vm.mask),
    );
    machine.run().expect("run on degraded network");
    assert_eq!(layout.read_c(&machine, &vm.pes), a.multiply(&b));
}

#[test]
fn output_stage_fault_forces_extra_stage_and_still_works() {
    let cfg = MachineConfig::prototype();
    let mut machine = Machine::new(cfg);
    machine.network_mut().set_fault(4, 3, true);
    machine.network_mut().reconfigure_for_faults();
    assert!(machine.network_mut().extra_enabled());
    assert!(!machine.network_mut().output_enabled());
    // All ring patterns of the experiments must still establish.
    for p in [4usize, 8, 16] {
        let vm = select_vm(machine.config(), p);
        machine
            .connect_ring(&vm.pes)
            .unwrap_or_else(|e| panic!("ring p={p}: {e}"));
        machine.network_mut().release_all();
    }
}

#[test]
fn ring_circuits_coexist_for_every_experiment_size() {
    let cfg = MachineConfig::prototype();
    for p in [2usize, 4, 8, 16] {
        let mut machine = Machine::new(cfg.clone());
        let vm = select_vm(&cfg, p);
        machine
            .connect_ring(&vm.pes)
            .unwrap_or_else(|e| panic!("ring p={p}: {e}"));
    }
}

#[test]
fn bytes_flow_in_ring_order() {
    // Each PE sends its own id left around the ring; every PE must receive the
    // id of its right neighbour.
    use pasm_isa::asm::assemble;
    let cfg = MachineConfig::prototype();
    let mut machine = Machine::new(cfg.clone());
    let vm = select_vm(&cfg, 4);
    machine.connect_ring(&vm.pes).unwrap();
    for (l, &pe) in vm.pes.iter().enumerate() {
        let src = format!(
            "
            MOVE.B  #{l},$00E00000.L     ; send my logical id
        poll: MOVE.B $00E00004.L,D6
            AND.W   #2,D6
            BEQ     poll
            MOVE.B  $00E00002.L,D0       ; receive
            HALT
            "
        );
        machine.load_pe_program(pe, assemble(&src).unwrap());
        machine.start_pe(pe, 0);
    }
    machine.run().unwrap();
    for (l, &pe) in vm.pes.iter().enumerate() {
        let expect = ((l + 1) % 4) as u32;
        assert_eq!(machine.pe_cpu(pe).d[0] & 0xFF, expect, "logical PE {l}");
    }
}

#[test]
fn network_stats_count_transfers() {
    // One full matmul at n=16, p=4 moves n words per rotation step per PE:
    // n rotations × n elements × 2 bytes = 512 bytes per PE.
    let cfg = MachineConfig::prototype();
    let (a, b) = pasm::paper_workload(16, 5);
    let out = pasm::run_matmul(&cfg, pasm::Mode::Mimd, pasm::Params::new(16, 4), &a, &b).unwrap();
    for t in out.run.pe.iter().filter(|t| t.instrs > 0) {
        assert_eq!(t.net_bytes_sent, 16 * 16 * 2);
    }
}
