//! Crash-safety tests of the durable persistence tier (ISSUE 9): the server
//! is killed at seeded byte offsets of its combined log write stream via the
//! test-only [`CrashFuse`], restarted over the surviving bytes, and checked
//! against ground truth:
//!
//! * every job whose `completed` journal record survived serves its result
//!   from the replayed cache, byte-identical to the pre-crash result (the
//!   store append strictly precedes the `completed` journal append in the
//!   shared write stream, so an acknowledged completion implies a durable
//!   result);
//! * no corrupt or torn record is ever served — damage is skipped and
//!   counted in `/metrics`;
//! * journaled pending jobs are re-enqueued exactly once, under their
//!   original ids, and complete;
//! * a restarted server answers a cached `/result` without re-simulating.

use pasm_server::store::read_records;
use pasm_server::{CrashFuse, FsyncPolicy, Server, ServerConfig};
use pasm_util::{json, Json};
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- helpers

fn request_raw(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {raw:?}"));
    let (_, payload) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, String::new(), payload.to_string())
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Json) {
    let (status, _, payload) = request_raw(addr, method, path, body);
    let parsed = json::parse(&payload).unwrap_or_else(|e| panic!("bad JSON body {payload:?}: {e}"));
    (status, parsed)
}

fn get(addr: SocketAddr, path: &str) -> (u16, Json) {
    request(addr, "GET", path, None)
}

fn submit(addr: SocketAddr, body: &str) -> (u16, Json) {
    request(addr, "POST", "/submit", Some(body))
}

fn status_str(resp: &Json) -> String {
    resp.get("status")
        .and_then(Json::as_str)
        .expect("status in response")
        .to_string()
}

fn await_terminal(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (code, body) = get(addr, &format!("/status/{id}"));
        assert_eq!(code, 200, "status of known job: {body:?}");
        match status_str(&body).as_str() {
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {id} did not finish in time");
                std::thread::sleep(Duration::from_millis(5));
            }
            _ => return body,
        }
    }
}

/// Poll `/healthz` until the recovery phase is over (200) — readiness.
fn await_ready(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (code, _) = get(addr, "/healthz");
        if code == 200 {
            return;
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (code, _, text) = request_raw(addr, "GET", "/metrics", None);
    assert_eq!(code, 200);
    text.lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("metric {name} not found"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pasm-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_durable(dir: &Path, fuse: Option<Arc<CrashFuse>>) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 64,
        data_dir: Some(dir.to_path_buf()),
        fsync: FsyncPolicy::Always,
        test_fuse: fuse,
        ..ServerConfig::default()
    })
    .expect("server starts")
}

/// The job set: every registered kernel, every execution mode, tiny sizes.
const JOBS: [&str; 6] = [
    r#"{"mode":"simd","n":4,"p":4,"seed":1801}"#,
    r#"{"mode":"mimd","n":8,"p":4,"seed":1801}"#,
    r#"{"mode":"smimd","n":8,"p":8,"seed":1801}"#,
    r#"{"mode":"serial","n":8,"seed":1801}"#,
    r#"{"mode":"mimd","kernel":"smooth","n":32,"p":4,"seed":1801}"#,
    r#"{"mode":"simd","kernel":"bitonic","n":32,"p":4,"seed":1801}"#,
];

/// Deterministic ground truth: run the whole job set on a memory-only
/// server and keep each result's compact JSON dump, keyed by submit body.
fn ground_truth() -> HashMap<&'static str, String> {
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 64,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let mut truth = HashMap::new();
    for body in JOBS {
        let (code, resp) = submit(addr, body);
        assert_eq!(code, 202, "{resp:?}");
        let id = resp.get("job_id").and_then(Json::as_u64).unwrap();
        let done = await_terminal(addr, id);
        assert_eq!(status_str(&done), "done", "{done:?}");
        let (code, result) = get(addr, &format!("/result/{id}"));
        assert_eq!(code, 200);
        truth.insert(body, result.get("result").expect("result").dump());
    }
    server.shutdown();
    truth
}

/// Journal events of one data dir: `(submitted, started, terminal)` id sets
/// plus the `completed` subset.
#[derive(Default)]
struct JournalView {
    submitted: HashSet<u64>,
    terminal: HashSet<u64>,
    completed: HashSet<u64>,
}

fn read_journal(dir: &Path) -> JournalView {
    let (records, _) = read_records(&dir.join("journal")).expect("read journal");
    let mut view = JournalView::default();
    for payload in records {
        let text = std::str::from_utf8(&payload).expect("journal record is UTF-8");
        let event = json::parse(text).expect("journal record is JSON");
        let ev = event.get("ev").and_then(Json::as_str).unwrap().to_string();
        let id = event.get("id").and_then(Json::as_u64).unwrap();
        match ev.as_str() {
            "submitted" => {
                view.submitted.insert(id);
            }
            "completed" => {
                view.completed.insert(id);
                view.terminal.insert(id);
            }
            "failed" | "canceled" | "expired" => {
                view.terminal.insert(id);
            }
            "started" => {}
            other => panic!("unexpected journal event {other:?}"),
        }
    }
    view
}

// ------------------------------------------------------------------ tests

/// The CI durability gate: a server restarted over a populated data dir
/// answers every cached `/result` from the replayed store, byte-identical,
/// without re-simulating a single job.
#[test]
fn restart_serves_persisted_results_without_resimulating() {
    let truth = ground_truth();
    let dir = tmpdir("restart");

    {
        let mut server = start_durable(&dir, None);
        let addr = server.addr();
        await_ready(addr);
        for body in JOBS {
            let (code, resp) = submit(addr, body);
            assert_eq!(code, 202, "{resp:?}");
            let id = resp.get("job_id").and_then(Json::as_u64).unwrap();
            assert_eq!(status_str(&await_terminal(addr, id)), "done");
        }
        server.shutdown();
    }

    let mut server = start_durable(&dir, None);
    let addr = server.addr();
    await_ready(addr);
    assert_eq!(metric(addr, "pasm_store_results_replayed_total"), 6);
    assert_eq!(metric(addr, "pasm_store_records_corrupt_total"), 0);
    for body in JOBS {
        let (code, resp) = submit(addr, body);
        assert_eq!(code, 200, "cache answers at submit time: {resp:?}");
        assert_eq!(resp.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            resp.get("result").expect("result").dump(),
            truth[body],
            "replayed result is byte-identical: {body}"
        );
    }
    // The cold-latency histogram saw no observations: nothing re-simulated.
    let (_, stats) = get(addr, "/stats");
    let cold_count = stats
        .get("latency")
        .and_then(|l| l.get("cold"))
        .and_then(|c| c.get("count"))
        .and_then(Json::as_u64);
    assert_eq!(cold_count, Some(0), "{stats:?}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The crash-injection sweep: ≥ 20 seeded kill points across the combined
/// write stream. After each crash → restart, the durable-completion
/// invariant holds, pending jobs are re-enqueued exactly once, and every
/// served result matches ground truth exactly.
#[test]
fn seeded_crash_points_never_lose_or_corrupt_completed_results() {
    let truth = ground_truth();
    // 24 kill points: inside the first segment magics, mid-header,
    // mid-payload, between a result append and its journal record, and deep
    // enough that most of the run survives.
    let budgets: [u64; 24] = [
        0, 1, 3, 5, 7, 8, 9, 12, 16, 21, 25, 40, 64, 100, 150, 200, 300, 400, 600, 900, 1300, 2000,
        3500, 6000,
    ];

    for (i, &budget) in budgets.iter().enumerate() {
        let dir = tmpdir(&format!("crash-{i}"));

        // Victim run: every write past `budget` bytes silently vanishes.
        let mut by_id: HashMap<u64, &'static str> = HashMap::new();
        {
            let mut server = start_durable(&dir, Some(CrashFuse::new(budget)));
            let addr = server.addr();
            await_ready(addr);
            for body in JOBS {
                let (code, resp) = submit(addr, body);
                assert_eq!(code, 202, "{resp:?}");
                by_id.insert(resp.get("job_id").and_then(Json::as_u64).unwrap(), body);
            }
            for id in by_id.keys() {
                assert_eq!(status_str(&await_terminal(addr, *id)), "done");
            }
            server.shutdown();
        }

        // What actually reached disk.
        let journal = read_journal(&dir);
        let pending: HashSet<u64> = journal
            .submitted
            .difference(&journal.terminal)
            .copied()
            .collect();

        // Restart over the damaged dir: replay must absorb every tear.
        let mut server = start_durable(&dir, None);
        let addr = server.addr();
        await_ready(addr);
        assert_eq!(
            metric(addr, "pasm_jobs_reenqueued_total"),
            pending.len() as u64,
            "budget {budget}: every pending job re-enqueued exactly once"
        );

        // Durable-completion invariant: a surviving `completed` record
        // implies the result record landed first (shared write stream), so
        // the restarted cache must answer it byte-identically at submit.
        for id in &journal.completed {
            let body = by_id[id];
            let (code, resp) = submit(addr, body);
            assert_eq!(code, 200, "budget {budget}: completed job {id} lost");
            assert_eq!(resp.get("cached").and_then(Json::as_bool), Some(true));
            assert_eq!(
                resp.get("result").expect("result").dump(),
                truth[body],
                "budget {budget}: durable result drifted for {body}"
            );
        }

        // Re-enqueued jobs finish under their original ids and match truth.
        for id in &pending {
            let done = await_terminal(addr, *id);
            assert_eq!(status_str(&done), "done", "budget {budget}: {done:?}");
            let (code, result) = get(addr, &format!("/result/{id}"));
            assert_eq!(code, 200);
            assert_eq!(
                result.get("result").expect("result").dump(),
                truth[by_id[id]],
                "budget {budget}: recovered job {id} result drifted"
            );
        }

        // No matter what survived, every key of the job set still answers
        // with ground truth — damage is never served, only recomputed.
        for body in JOBS {
            let (code, resp) = submit(addr, body);
            assert!(code == 200 || code == 202, "{resp:?}");
            let id = resp.get("job_id").and_then(Json::as_u64).unwrap();
            await_terminal(addr, id);
            let (code, result) = get(addr, &format!("/result/{id}"));
            assert_eq!(code, 200);
            assert_eq!(
                result.get("result").expect("result").dump(),
                truth[body],
                "budget {budget}: post-recovery result drifted for {body}"
            );
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A flipped payload bit in the result store is detected, counted, and the
/// damaged entry recomputed — never served.
#[test]
fn bit_flipped_result_is_skipped_counted_and_recomputed() {
    let truth = ground_truth();
    let dir = tmpdir("bitflip");
    {
        let mut server = start_durable(&dir, None);
        let addr = server.addr();
        await_ready(addr);
        for body in JOBS {
            let (code, resp) = submit(addr, body);
            assert_eq!(code, 202, "{resp:?}");
            let id = resp.get("job_id").and_then(Json::as_u64).unwrap();
            assert_eq!(status_str(&await_terminal(addr, id)), "done");
        }
        server.shutdown();
    }

    // Flip one bit deep inside the first result record's payload.
    let seg = dir.join("results").join("seg-000001.log");
    let mut bytes = std::fs::read(&seg).unwrap();
    let offset = 8 + 8 + 40; // magic + record header + 40 payload bytes
    bytes[offset] ^= 0x01;
    std::fs::write(&seg, &bytes).unwrap();

    let mut server = start_durable(&dir, None);
    let addr = server.addr();
    await_ready(addr);
    assert_eq!(metric(addr, "pasm_store_records_corrupt_total"), 1);
    assert_eq!(metric(addr, "pasm_store_results_replayed_total"), 5);
    for body in JOBS {
        let (code, resp) = submit(addr, body);
        assert!(code == 200 || code == 202, "{resp:?}");
        let id = resp.get("job_id").and_then(Json::as_u64).unwrap();
        await_terminal(addr, id);
        let (code, result) = get(addr, &format!("/result/{id}"));
        assert_eq!(code, 200);
        assert_eq!(
            result.get("result").expect("result").dump(),
            truth[body],
            "corrupted entry must be recomputed, not served: {body}"
        );
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Readiness vs. liveness: `/healthz` answers 503 `recovering` while the
/// startup replay is in flight and `/submit` refuses, then both flip once
/// the index is rebuilt.
#[test]
fn healthz_is_503_recovering_until_replay_finishes() {
    let dir = tmpdir("readiness");
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 8,
        data_dir: Some(dir.clone()),
        fsync: FsyncPolicy::Always,
        recovery_hold_ms: 400,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    let (code, body) = get(addr, "/healthz");
    assert_eq!(code, 503, "{body:?}");
    assert_eq!(status_str(&body), "recovering");
    let (code, body) = submit(addr, JOBS[0]);
    assert_eq!(code, 503, "{body:?}");
    assert_eq!(body.get("error").and_then(Json::as_str), Some("recovering"));

    await_ready(addr);
    let (code, body) = get(addr, "/healthz");
    assert_eq!(code, 200);
    assert_eq!(status_str(&body), "ok");
    let (code, resp) = submit(addr, JOBS[0]);
    assert_eq!(code, 202, "{resp:?}");
    let id = resp.get("job_id").and_then(Json::as_u64).unwrap();
    assert_eq!(status_str(&await_terminal(addr, id)), "done");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful drain flushes everything: the journal closes every admitted
/// job, the result store holds every completed result, and the stats
/// snapshot lands in the data dir.
#[test]
fn graceful_drain_flushes_journal_store_and_snapshot() {
    let dir = tmpdir("drain");
    {
        let mut server = start_durable(&dir, None);
        let addr = server.addr();
        await_ready(addr);
        for body in &JOBS[..3] {
            let (code, resp) = submit(addr, body);
            assert_eq!(code, 202, "{resp:?}");
            let id = resp.get("job_id").and_then(Json::as_u64).unwrap();
            assert_eq!(status_str(&await_terminal(addr, id)), "done");
        }
        server.shutdown();
    }
    let journal = read_journal(&dir);
    assert_eq!(journal.submitted.len(), 3);
    assert_eq!(journal.completed.len(), 3);
    let (results, stats) = read_records(&dir.join("results")).expect("read results");
    assert_eq!(results.len(), 3);
    assert_eq!(stats.truncated + stats.corrupt, 0);
    let snapshot = std::fs::read_to_string(dir.join("stats.json")).expect("stats snapshot");
    let snapshot = json::parse(snapshot.trim()).expect("snapshot is JSON");
    assert_eq!(snapshot.get("completed").and_then(Json::as_u64), Some(3));
    let durability = snapshot.get("durability").expect("durability section");
    assert_eq!(
        durability.get("store_appends").and_then(Json::as_u64),
        Some(3)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
