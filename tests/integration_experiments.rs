//! Cross-crate tests of the figure-regeneration layer (small sizes — the full
//! paper-scale sweeps live in the bench binaries).

use pasm::figures::*;
use pasm::{MachineConfig, Mode};

fn cfg() -> MachineConfig {
    MachineConfig::prototype()
}

#[test]
fn table1_simd_is_faster_per_instruction() {
    let rows = table1(&cfg());
    assert_eq!(rows.len(), 2);
    for r in &rows {
        assert!(
            r.simd_mips > r.mimd_mips,
            "{}: SIMD {:.3} must exceed MIMD {:.3} MIPS",
            r.instruction,
            r.simd_mips,
            r.mimd_mips
        );
        assert!(
            r.mimd_mips > 0.1 && r.simd_mips < 8.0,
            "rates must be physical"
        );
    }
    // The register ADD is faster than the memory MOVE in both modes.
    assert!(rows[0].simd_mips > rows[1].simd_mips);
    assert!(rows[0].mimd_mips > rows[1].mimd_mips);
}

#[test]
fn fig6_series_shapes() {
    let rows = fig6(&cfg(), 8, &[8, 16, 32], 7);
    assert_eq!(rows.len(), 3);
    for w in rows.windows(2) {
        assert!(w[1].serial_ms > w[0].serial_ms, "time grows with n");
        assert!(w[1].simd_ms > w[0].simd_ms);
    }
    for r in &rows {
        assert!(r.serial_ms > r.simd_ms, "n={}: parallel beats serial", r.n);
        assert!(r.serial_ms > r.mimd_ms);
        assert!(r.serial_ms > r.smimd_ms);
    }
}

#[test]
fn fig7_crossover_exists_at_small_scale() {
    // The decoupling benefit is the Jensen gap between sum-of-maxes and
    // max-of-sums over the n/p per-column multiplier draws, so it shrinks for
    // small matrices; the crossover is an n=64 phenomenon (paper: ~14 added
    // multiplies; located exactly by the fig7 bench binary). Here we pin the
    // two endpoints, which is what defines a crossover's existence.
    let rows = fig7(&cfg(), 64, 4, &[0, 30], 7);
    assert!(
        rows[0].simd_ms < rows[0].smimd_ms,
        "SIMD must win with one multiply: {rows:?}"
    );
    assert!(
        rows[1].smimd_ms < rows[1].simd_ms,
        "S/MIMD must win with 30 added multiplies: {rows:?}"
    );
    assert_eq!(fig7_crossover(&rows), Some(30));
}

#[test]
fn breakdown_components_sum_to_total() {
    let rows = fig8_10(&cfg(), 4, 0, &[8, 16], 7);
    assert_eq!(rows.len(), 4); // 2 sizes × 2 modes
    for r in &rows {
        let sum = r.multiply_ms + r.communication_ms + r.other_ms;
        assert!(
            (sum - r.total_ms).abs() < 1e-9,
            "decomposition must be exact"
        );
        assert!(r.multiply_ms > 0.0 && r.communication_ms > 0.0);
    }
}

#[test]
fn fig11_efficiency_rises_with_n_and_ranks_modes() {
    let rows = fig11(&cfg(), 4, &[8, 32], 7);
    assert!(rows[1].smimd > rows[0].smimd, "efficiency grows with n");
    assert!(rows[1].mimd > rows[0].mimd);
    for r in &rows {
        assert!(
            r.simd > r.smimd && r.smimd > r.mimd,
            "mode ordering at n={}",
            r.n
        );
        assert!(r.mimd > 0.1 && r.simd < 1.6, "sane range at n={}", r.n);
    }
}

#[test]
fn fig12_efficiency_falls_with_p() {
    let rows = fig12(&cfg(), 16, &[4, 8, 16], 7);
    for w in rows.windows(2) {
        assert!(w[1].simd < w[0].simd, "SIMD eff falls with p");
        assert!(w[1].mimd < w[0].mimd, "MIMD eff falls with p");
        assert!(w[1].smimd < w[0].smimd, "S/MIMD eff falls with p");
    }
}

#[test]
fn ablation_lockstep_never_beats_decoupled() {
    let rows = ablation_release(&cfg(), 16, 4, &[0, 10], 7);
    for r in &rows {
        assert!(
            r.lockstep_ms >= r.decoupled_ms,
            "decoupled is a lower bound: {} vs {}",
            r.lockstep_ms,
            r.decoupled_ms
        );
    }
    // The barrier cost grows with added data-dependent multiplies.
    let gap = |r: &AblationReleaseRow| r.lockstep_ms - r.decoupled_ms;
    assert!(gap(&rows[1]) > gap(&rows[0]));
}

#[test]
fn ablation_tiny_queue_slows_simd() {
    let rows = ablation_queue(&cfg(), 16, 4, &[8, 512], 7);
    assert!(
        rows[0].simd_ms > rows[1].simd_ms,
        "a starved queue must cost time"
    );
    assert!(rows[0].empty_stall_cycles > rows[1].empty_stall_cycles);
}

#[test]
fn ablation_constant_popcount_kills_the_crossover() {
    // With every multiplier having the same popcount the multiply time is
    // constant, max == mean, and SIMD keeps its fixed advantages everywhere.
    let extras: Vec<usize> = (0..=30).step_by(5).collect();
    let rows = ablation_density(&cfg(), 16, 4, &[8], &extras, 7);
    assert_eq!(rows[0].ones, 8);
    assert!(
        rows[0].crossover.is_none(),
        "no timing variance ⇒ no crossover, got {:?}",
        rows[0].crossover
    );
}

#[test]
fn modes_display_names() {
    assert_eq!(Mode::Serial.to_string(), "SISD");
    assert_eq!(Mode::Smimd.to_string(), "S/MIMD");
}
