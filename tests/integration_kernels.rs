//! End-to-end coverage of the `pasm-kernels` registry (ISSUE 5 acceptance):
//! every non-matmul kernel runs in SIMD, MIMD, and S/MIMD on p ∈ {4, 8, 16}
//! of the 16-PE prototype, each output verified word for word against the
//! kernel's scalar host reference; repeated seeded runs produce byte-identical
//! cycle buckets; and the registry/CLI plumbing (lookup, validation,
//! checksums) behaves at the boundaries.

use pasm::{run_kernel, MachineConfig, Mode, Params};
use pasm_machine::N_BUCKETS;

const SEED: u64 = 7321;

/// n chosen so K = n/p stays a power of two in bitonic's 2..=128 window for
/// every p in the sweep (p=16 → K=4, p=4 → K=16).
const N: usize = 64;

#[test]
fn every_kernel_verifies_in_every_mode_and_partition() {
    let cfg = MachineConfig::prototype();
    for kernel in pasm::kernels::kernels().iter().copied() {
        if kernel.name() == pasm::MATMUL {
            continue; // covered by integration_matmul / integration_modes
        }
        let input = kernel.generate(N, SEED);
        for p in [4usize, 8, 16] {
            kernel
                .validate(N, p)
                .unwrap_or_else(|e| panic!("{} n={N} p={p}: {e}", kernel.name()));
            for mode in [Mode::Simd, Mode::Mimd, Mode::Smimd] {
                let out = run_kernel(&cfg, kernel, mode, Params::new(N, p), &input)
                    .unwrap_or_else(|e| panic!("{} {mode} p={p}: {e}", kernel.name()));
                out.verify(&input)
                    .unwrap_or_else(|e| panic!("{} {mode} p={p}: {e}", kernel.name()));
                assert!(out.cycles > 0);
            }
        }
    }
}

#[test]
fn repeated_runs_have_byte_identical_buckets() {
    // The acceptance criterion verbatim: same seed, same kernel, same mode →
    // the per-PE cycle buckets (not just the makespan) agree byte for byte.
    let cfg = MachineConfig::prototype();
    for kernel in pasm::kernels::kernels().iter().copied() {
        let input = kernel.generate(32, SEED);
        for mode in [Mode::Simd, Mode::Mimd, Mode::Smimd] {
            let runs: Vec<_> = (0..2)
                .map(|_| {
                    run_kernel(&cfg, kernel, mode, Params::new(32, 4), &input)
                        .unwrap_or_else(|e| panic!("{} {mode}: {e}", kernel.name()))
                })
                .collect();
            assert_eq!(runs[0].cycles, runs[1].cycles, "{} {mode}", kernel.name());
            assert_eq!(runs[0].output, runs[1].output, "{} {mode}", kernel.name());
            let buckets = |o: &pasm::KernelOutcome| -> Vec<[u64; N_BUCKETS]> {
                o.run
                    .accounts
                    .as_ref()
                    .expect("accounting on by default")
                    .pe
                    .iter()
                    .map(|acc| *acc.buckets())
                    .collect()
            };
            let a = buckets(&runs[0]);
            let b = buckets(&runs[1]);
            let to_bytes = |v: &[[u64; N_BUCKETS]]| -> Vec<u8> {
                v.iter()
                    .flat_map(|pe| pe.iter().flat_map(|c| c.to_le_bytes()))
                    .collect()
            };
            assert_eq!(
                to_bytes(&a),
                to_bytes(&b),
                "{} {mode}: cycle buckets diverged between identical runs",
                kernel.name()
            );
        }
    }
}

#[test]
fn registry_lookup_is_case_insensitive_and_total() {
    assert_eq!(
        pasm::kernels::names(),
        ["matmul", "smooth", "reduce", "bitonic"]
    );
    for name in pasm::kernels::names() {
        let k = pasm::kernels::find(name).expect("registered kernel resolves");
        assert_eq!(k.name(), name);
        assert!(!k.description().is_empty());
    }
    assert!(pasm::kernels::find("SMOOTH").is_some());
    assert!(pasm::kernels::find("Bitonic").is_some());
    assert!(pasm::kernels::find("fft").is_none());
}

#[test]
fn only_matmul_supports_serial() {
    for kernel in pasm::kernels::kernels() {
        assert_eq!(
            kernel.supports_serial(),
            kernel.name() == pasm::MATMUL,
            "{}",
            kernel.name()
        );
    }
}

#[test]
fn generate_is_seed_deterministic_and_seed_sensitive() {
    for kernel in pasm::kernels::kernels() {
        let a = kernel.generate(32, 1);
        let b = kernel.generate(32, 1);
        let c = kernel.generate(32, 2);
        assert_eq!(a, b, "{}: same seed, same input", kernel.name());
        assert_ne!(a, c, "{}: different seed, different input", kernel.name());
        assert!(!a.is_empty(), "{}: non-empty input", kernel.name());
    }
}

#[test]
fn reference_checksum_matches_run_result_checksum() {
    // The CLI's verification contract: `kernels::checksum(reference)` equals
    // the keyed run's `c_checksum` for every workload.
    for kernel in pasm::kernels::names() {
        let key = pasm::ExperimentKey {
            config: MachineConfig::prototype(),
            mode: Mode::Smimd,
            params: Params::new(16, 4),
            seed: SEED,
            fault: Default::default(),
            workload: kernel,
        };
        let result = pasm::run_keyed(&key).expect("keyed kernel run");
        let k = pasm::kernels::find(kernel).unwrap();
        let expect = k.reference(key.params, &k.generate(16, SEED));
        assert_eq!(
            pasm::kernels::checksum(&expect),
            result.c_checksum,
            "{kernel}: checksum contract broken"
        );
        assert_eq!(result.workload, kernel);
    }
}
