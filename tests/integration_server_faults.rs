//! Fault-tolerance tests of the `pasm-server` service (ISSUE 4): panic
//! quarantine, retry-with-backoff, the deadline watchdog, cooperative
//! cancellation of running jobs, and fault-plan jobs over HTTP.
//!
//! The panic paths are driven by the test-only `chaos` member of the submit
//! body, which makes a worker attempt panic deliberately without touching
//! the simulation itself (and is excluded from the cache key).

use pasm_server::store::read_records;
use pasm_server::{FsyncPolicy, Server, ServerConfig};
use pasm_util::{json, Json};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn request_raw(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {raw:?}"));
    let (head, payload) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, head.to_string(), payload.to_string())
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Json) {
    let (status, _, payload) = request_raw(addr, method, path, body);
    let parsed = json::parse(&payload).unwrap_or_else(|e| panic!("bad JSON body {payload:?}: {e}"));
    (status, parsed)
}

fn get(addr: SocketAddr, path: &str) -> (u16, Json) {
    request(addr, "GET", path, None)
}

fn submit(addr: SocketAddr, body: &str) -> (u16, Json) {
    request(addr, "POST", "/submit", Some(body))
}

fn job_id(resp: &Json) -> u64 {
    resp.get("job_id")
        .and_then(Json::as_u64)
        .expect("job_id in response")
}

fn status_str(resp: &Json) -> String {
    resp.get("status")
        .and_then(Json::as_str)
        .expect("status in response")
        .to_string()
}

fn message(resp: &Json) -> String {
    resp.get("message")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string()
}

fn stat(addr: SocketAddr, key: &str) -> u64 {
    let (code, body) = get(addr, "/stats");
    assert_eq!(code, 200);
    body.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stat {key} in {body:?}"))
}

fn await_terminal(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (code, body) = get(addr, &format!("/status/{id}"));
        assert_eq!(code, 200, "status of known job: {body:?}");
        match status_str(&body).as_str() {
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {id} did not finish in time");
                std::thread::sleep(Duration::from_millis(5));
            }
            _ => return body,
        }
    }
}

fn start(workers: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth: 64,
        ..ServerConfig::default()
    })
    .expect("server starts")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pasm-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Start a server with a durable data dir and wait out its recovery phase.
fn start_durable(workers: usize, dir: &Path) -> Server {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth: 64,
        data_dir: Some(dir.to_path_buf()),
        fsync: FsyncPolicy::Always,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (code, _) = get(server.addr(), "/healthz");
        if code == 200 {
            return server;
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Journal event counts for one job id: `(submitted, started, terminals)`.
fn journal_events(dir: &Path, id: u64) -> (u64, u64, Vec<String>) {
    let (records, _) = read_records(&dir.join("journal")).expect("read journal");
    let (mut submitted, mut started, mut terminals) = (0, 0, Vec::new());
    for payload in records {
        let event = json::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
        if event.get("id").and_then(Json::as_u64) != Some(id) {
            continue;
        }
        match event.get("ev").and_then(Json::as_str).unwrap() {
            "submitted" => submitted += 1,
            "started" => started += 1,
            terminal => terminals.push(terminal.to_string()),
        }
    }
    (submitted, started, terminals)
}

fn await_running(addr: SocketAddr, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, body) = get(addr, &format!("/status/{id}"));
        if status_str(&body) == "running" {
            return;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A deliberately panicking job is retried, then quarantined as `failed`
/// with the panic recorded — and the worker pool keeps its full capacity.
#[test]
fn panicking_job_is_quarantined_and_the_pool_survives() {
    let mut server = start(2);
    let addr = server.addr();

    let (code, resp) = submit(
        addr,
        r#"{"mode":"simd","n":4,"p":4,"seed":901,"chaos":{"kind":"panic"}}"#,
    );
    assert_eq!(code, 202, "{resp:?}");
    let id = job_id(&resp);
    let done = await_terminal(addr, id);
    assert_eq!(status_str(&done), "failed", "{done:?}");
    assert!(
        message(&done).contains("panicked"),
        "panic recorded in the error detail: {done:?}"
    );
    // 3 attempts: 2 retries with backoff, then quarantine.
    assert_eq!(done.get("attempts").and_then(Json::as_u64), Some(3));
    assert_eq!(stat(addr, "quarantined"), 1);
    assert_eq!(stat(addr, "retries"), 2);
    let (code, gone) = get(addr, &format!("/result/{id}"));
    assert_eq!(code, 500, "no result for a quarantined job: {gone:?}");
    assert_eq!(gone.get("error").and_then(Json::as_str), Some("job_failed"));

    // The quarantine counters are on /metrics too.
    let (code, _, text) = request_raw(addr, "GET", "/metrics", None);
    assert_eq!(code, 200);
    assert!(text.contains("pasm_jobs_quarantined_total 1"), "{text}");
    assert!(text.contains("pasm_job_retries_total 2"), "{text}");

    // Both workers still serve: more simultaneous jobs than one worker
    // could handle in order all complete.
    let ids: Vec<u64> = (0..6)
        .map(|i| {
            let body = format!(r#"{{"mode":"simd","n":4,"p":4,"seed":{}}}"#, 1000 + i);
            let (code, resp) = submit(addr, &body);
            assert_eq!(code, 202, "{resp:?}");
            job_id(&resp)
        })
        .collect();
    for id in ids {
        assert_eq!(status_str(&await_terminal(addr, id)), "done");
    }
    server.shutdown();
}

/// A transiently panicking job (chaos `times: 2`) succeeds on the third
/// attempt, with the retries visible in the summary and the counters.
#[test]
fn transient_panics_are_retried_to_success() {
    let mut server = start(1);
    let addr = server.addr();

    let (code, resp) = submit(
        addr,
        r#"{"mode":"simd","n":4,"p":4,"seed":902,"chaos":{"kind":"transient","times":2}}"#,
    );
    assert_eq!(code, 202, "{resp:?}");
    let done = await_terminal(addr, job_id(&resp));
    assert_eq!(status_str(&done), "done", "{done:?}");
    assert_eq!(done.get("attempts").and_then(Json::as_u64), Some(3));
    assert_eq!(stat(addr, "retries"), 2);
    assert_eq!(stat(addr, "quarantined"), 0);
    assert_eq!(stat(addr, "completed"), 1);
    server.shutdown();
}

/// The watchdog interrupts a running job past its wall-clock deadline and
/// records a deadline failure (not a crash, not a hung worker).
#[test]
fn watchdog_fails_a_running_job_past_its_deadline() {
    let mut server = start(1);
    let addr = server.addr();

    // Big enough that the simulation runs for seconds if never interrupted.
    let (code, resp) = submit(
        addr,
        r#"{"mode":"mimd","n":128,"p":4,"seed":903,"deadline_ms":50}"#,
    );
    assert_eq!(code, 202, "{resp:?}");
    let done = await_terminal(addr, job_id(&resp));
    assert_eq!(status_str(&done), "failed", "{done:?}");
    assert!(
        message(&done).contains("deadline exceeded"),
        "watchdog recorded the deadline: {done:?}"
    );
    assert_eq!(stat(addr, "watchdog_timeouts"), 1);

    // The worker is free again.
    let (_, resp) = submit(addr, r#"{"mode":"simd","n":4,"p":4,"seed":904}"#);
    assert_eq!(status_str(&await_terminal(addr, job_id(&resp))), "done");
    server.shutdown();
}

/// Canceling a *running* job interrupts the simulation cooperatively,
/// releases the worker slot, and leaves the counters consistent.
#[test]
fn cancel_while_running_releases_the_worker_slot() {
    let mut server = start(1);
    let addr = server.addr();

    let (code, resp) = submit(addr, r#"{"mode":"mimd","n":256,"p":4,"seed":905}"#);
    assert_eq!(code, 202, "{resp:?}");
    let id = job_id(&resp);

    // Wait until the single worker has actually claimed it.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, body) = get(addr, &format!("/status/{id}"));
        if status_str(&body) == "running" {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Cooperative cancel: accepted (202), terminal state follows shortly.
    let (code, resp) = request(addr, "POST", &format!("/cancel/{id}"), None);
    assert_eq!(code, 202, "{resp:?}");
    assert_eq!(
        resp.get("cancel_requested").and_then(Json::as_bool),
        Some(true)
    );
    let done = await_terminal(addr, id);
    assert_eq!(status_str(&done), "canceled", "{done:?}");
    assert!(
        message(&done).contains("canceled while running"),
        "{done:?}"
    );
    let (code, gone) = get(addr, &format!("/result/{id}"));
    assert_eq!(code, 409, "canceled job has no result: {gone:?}");

    // The slot is free and the counters add up.
    let (_, resp) = submit(addr, r#"{"mode":"simd","n":4,"p":4,"seed":906}"#);
    assert_eq!(status_str(&await_terminal(addr, job_id(&resp))), "done");
    assert_eq!(stat(addr, "canceled"), 1);
    assert_eq!(stat(addr, "completed"), 1);
    assert_eq!(stat(addr, "failed"), 0);
    assert_eq!(stat(addr, "submitted"), 2);
    server.shutdown();
}

/// Fault-plan jobs run end to end over HTTP: the result reports the fault,
/// the fault-free baseline, and a slowdown attributed to rerouting; bad
/// fault specs are client errors.
#[test]
fn fault_plan_jobs_report_their_slowdown() {
    let mut server = start(2);
    let addr = server.addr();

    // An interior box fault: rerouted, so the job must be slower than its
    // fault-free twin.
    let (code, resp) = submit(
        addr,
        r#"{"mode":"smimd","n":8,"p":8,"seed":907,"fault":"box:1:0"}"#,
    );
    assert_eq!(code, 202, "{resp:?}");
    let id = job_id(&resp);
    let done = await_terminal(addr, id);
    assert_eq!(status_str(&done), "done", "{done:?}");
    assert_eq!(done.get("fault").and_then(Json::as_str), Some("box:1:0"));

    let (code, body) = get(addr, &format!("/result/{id}"));
    assert_eq!(code, 200, "{body:?}");
    let result = body.get("result").expect("result payload");
    assert_eq!(result.get("fault").and_then(Json::as_str), Some("box:1:0"));
    let baseline = result
        .get("baseline_cycles")
        .and_then(Json::as_u64)
        .expect("baseline_cycles");
    let cycles = result.get("cycles").and_then(Json::as_u64).expect("cycles");
    let slowdown = result
        .get("slowdown")
        .and_then(Json::as_f64)
        .expect("slowdown");
    assert!(baseline > 0 && cycles > baseline, "{result:?}");
    assert!(slowdown > 1.0, "rerouted fault slows the run: {result:?}");
    assert_eq!(stat(addr, "fault_jobs"), 1);

    // Malformed fault specs are 400s, not failed jobs.
    for bad in [
        r#"{"mode":"simd","n":4,"p":4,"fault":"warp:1"}"#,
        r#"{"mode":"simd","n":4,"p":4,"fault":"dead:99"}"#,
        r#"{"mode":"simd","n":4,"p":4,"fault":42}"#,
    ] {
        let (code, resp) = submit(addr, bad);
        assert_eq!(code, 400, "{resp:?}");
    }
    server.shutdown();
}

/// Canceling a job whose first attempt panicked (so it is inside the retry
/// backoff, or the retry attempt itself) ends it `canceled` — never
/// quarantined as a panic failure — and the journal holds exactly one
/// `started` and one terminal record for the id.
#[test]
fn cancel_while_retrying_is_canceled_with_one_terminal_journal_record() {
    let dir = tmpdir("cancel-retry");
    let mut server = start_durable(1, &dir);
    let addr = server.addr();

    // Attempt 0 panics instantly (transient chaos), then the retry would
    // simulate for seconds: the cancel lands in the backoff or early in the
    // retry — both must resolve to `canceled`.
    let (code, resp) = submit(
        addr,
        r#"{"mode":"mimd","n":256,"p":4,"seed":910,"chaos":{"kind":"transient","times":1}}"#,
    );
    assert_eq!(code, 202, "{resp:?}");
    let id = job_id(&resp);
    await_running(addr, id);
    let (code, resp) = request(addr, "POST", &format!("/cancel/{id}"), None);
    assert_eq!(code, 202, "{resp:?}");

    let done = await_terminal(addr, id);
    assert_eq!(status_str(&done), "canceled", "{done:?}");
    assert_eq!(stat(addr, "canceled"), 1);
    assert_eq!(stat(addr, "quarantined"), 0);
    assert_eq!(stat(addr, "completed"), 0);
    server.shutdown();

    let (submitted, started, terminals) = journal_events(&dir, id);
    assert_eq!(submitted, 1);
    assert_eq!(started, 1, "retries must not journal `started` again");
    assert_eq!(terminals, vec!["canceled".to_string()], "exactly one close");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A deadline firing during the retry backoff (or the retry itself) fails
/// the job with the deadline recorded — no double completion, no leaked
/// journal record.
#[test]
fn deadline_during_backoff_fails_once_with_one_terminal_journal_record() {
    let dir = tmpdir("deadline-backoff");
    let mut server = start_durable(1, &dir);
    let addr = server.addr();

    // Attempt 0 panics instantly; the backoff and the retry (which would
    // simulate for many seconds) together span the 250 ms deadline, so the
    // watchdog always interrupts mid-recovery — while the deadline is wide
    // enough that the job cannot expire unclaimed on a loaded CI machine.
    let (code, resp) = submit(
        addr,
        r#"{"mode":"mimd","n":256,"p":4,"seed":911,"deadline_ms":250,"chaos":{"kind":"transient","times":1}}"#,
    );
    assert_eq!(code, 202, "{resp:?}");
    let id = job_id(&resp);
    let done = await_terminal(addr, id);
    assert_eq!(status_str(&done), "failed", "{done:?}");
    assert!(
        message(&done).contains("deadline exceeded"),
        "watchdog recorded the deadline: {done:?}"
    );
    assert_eq!(stat(addr, "watchdog_timeouts"), 1);
    assert_eq!(stat(addr, "quarantined"), 0);
    assert_eq!(stat(addr, "completed"), 0);
    server.shutdown();

    let (submitted, started, terminals) = journal_events(&dir, id);
    assert_eq!(submitted, 1);
    assert_eq!(started, 1);
    assert_eq!(terminals, vec!["failed".to_string()], "exactly one close");
    let _ = std::fs::remove_dir_all(&dir);
}
