//! PASM's headline property: the machine is *partitionable* into independent
//! virtual SIMD/MIMD machines. These tests run multiple jobs simultaneously
//! on disjoint MC groups and check correctness, non-interference, and exact
//! timing isolation.

use pasm::{paper_workload, run_concurrent, run_matmul, Job, MachineConfig, Mode, Params};
use pasm_prog::Matrix;

fn cfg() -> MachineConfig {
    MachineConfig::prototype()
}

fn job(mode: Mode, n: usize, p: usize, mcs: Vec<usize>, seed: u64) -> Job {
    Job {
        mode,
        params: Params::new(n, p),
        mcs,
        a: Matrix::uniform(n, seed),
        b: Matrix::uniform(n, seed + 1),
    }
}

#[test]
fn two_concurrent_mimd_jobs_are_both_correct() {
    let jobs = [
        job(Mode::Mimd, 16, 4, vec![0], 1),
        job(Mode::Mimd, 8, 4, vec![1], 2),
    ];
    let out = run_concurrent(&cfg(), &jobs).unwrap();
    for (j, o) in jobs.iter().zip(&out) {
        assert_eq!(o.c, j.a.multiply(&j.b), "{:?}", j.mode);
        assert!(o.cycles > 0);
    }
}

#[test]
fn mixed_mode_partition_simd_next_to_smimd() {
    // A SIMD job on MCs {0,1} (8 PEs) next to an S/MIMD job on MC 2 (4 PEs),
    // with MC 3 idle — three-way partition of the prototype.
    let jobs = [
        job(Mode::Simd, 16, 8, vec![0, 1], 3),
        job(Mode::Smimd, 16, 4, vec![2], 4),
    ];
    let out = run_concurrent(&cfg(), &jobs).unwrap();
    for (j, o) in jobs.iter().zip(&out) {
        assert_eq!(o.c, j.a.multiply(&j.b), "{:?}", j.mode);
    }
}

#[test]
fn four_way_partition_runs_all_modes_at_once() {
    let jobs = [
        job(Mode::Simd, 8, 4, vec![0], 5),
        job(Mode::Mimd, 8, 4, vec![1], 6),
        job(Mode::Smimd, 8, 4, vec![2], 7),
        job(Mode::Serial, 8, 1, vec![3], 8),
    ];
    let out = run_concurrent(&cfg(), &jobs).unwrap();
    for (j, o) in jobs.iter().zip(&out) {
        assert_eq!(o.c, j.a.multiply(&j.b), "{:?}", j.mode);
    }
}

#[test]
fn partitions_have_exact_timing_isolation() {
    // A job must take *exactly* as long inside a partition as it does alone:
    // the partitions share no MCs, no queues, and only straight-mode boxes in
    // the low network stages.
    let (a, b) = paper_workload(16, 9);
    let solo = run_matmul(&cfg(), Mode::Smimd, Params::new(16, 4), &a, &b).unwrap();
    let jobs = [
        Job {
            mode: Mode::Smimd,
            params: Params::new(16, 4),
            mcs: vec![0],
            a,
            b,
        },
        job(Mode::Mimd, 16, 4, vec![1], 11),
    ];
    let out = run_concurrent(&cfg(), &jobs).unwrap();
    assert_eq!(
        out[0].cycles, solo.cycles,
        "partitioned run must match the solo run cycle-for-cycle"
    );
}

#[test]
#[should_panic(expected = "claimed by two jobs")]
fn overlapping_partitions_are_rejected() {
    let jobs = [
        job(Mode::Mimd, 8, 4, vec![0], 1),
        job(Mode::Mimd, 8, 4, vec![0], 2),
    ];
    let _ = run_concurrent(&cfg(), &jobs);
}

#[test]
fn partition_on_later_mcs_works_alone() {
    // A virtual machine need not start at MC 0.
    let jobs = [job(Mode::Smimd, 16, 8, vec![2, 3], 12)];
    let out = run_concurrent(&cfg(), &jobs).unwrap();
    assert_eq!(out[0].c, jobs[0].a.multiply(&jobs[0].b));
}
