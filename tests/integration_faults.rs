//! Fault injection end to end (ISSUE 4): the matmul variants complete
//! correctly under any single network fault, rerouted faults charge the
//! `fault_detour` bucket, PE fault models degrade gracefully, and the
//! unroutable full-machine ring is a clean error — never a panic or a hang.
//!
//! The exhaustive sweep here uses a 4-PE machine (14 single faults) so the
//! suite stays fast; `bench --bin faultsweep` runs the same assertions on
//! the 16-PE prototype across 104 faults and 16 seeds.

use pasm::{
    paper_workload, run_keyed, run_matmul_opts, single_faults, ExperimentKey, FaultPlan,
    MachineConfig, Mode, NetFault, PeFault, RunOptions,
};
use pasm_machine::{Bucket, RunError};
use pasm_prog::Matrix;

/// A 4-PE machine whose half-machine partition spreads across two MCs —
/// the smallest machine with a fault-tolerant p=2 partition.
fn small_cfg() -> MachineConfig {
    MachineConfig {
        n_mcs: 2,
        ..MachineConfig::small()
    }
}

fn keyed(cfg: MachineConfig, mode: Mode, n: usize, p: usize, fault: FaultPlan) -> ExperimentKey {
    ExperimentKey {
        config: cfg,
        mode,
        params: pasm::Params::new(n, p),
        seed: 4242,
        fault,
        workload: pasm::MATMUL,
    }
}

#[test]
fn every_single_network_fault_is_tolerated_in_all_modes() {
    let cfg = small_cfg();
    let a = Matrix::uniform(4, 11);
    let b = Matrix::uniform(4, 22);
    let expect = a.multiply(&b);
    for mode in [Mode::Simd, Mode::Mimd, Mode::Smimd] {
        for fault in single_faults(cfg.n_pes) {
            let opts = RunOptions {
                fault: FaultPlan::net_single(fault),
                ..RunOptions::default()
            };
            let out = run_matmul_opts(&cfg, mode, pasm::Params::new(4, 2), &a, &b, &opts)
                .unwrap_or_else(|e| panic!("{mode} under {fault}: {e}"));
            assert_eq!(out.c, expect, "{mode} product wrong under {fault}");
        }
    }
}

#[test]
fn rerouted_fault_slows_down_through_the_detour_bucket() {
    // An interior box fault on the prototype: every circuit of the p=8
    // partition pays the extra stage.
    let fault = FaultPlan::net_single(NetFault::Box {
        stage: 1,
        box_idx: 0,
    });
    let key = keyed(MachineConfig::prototype(), Mode::Smimd, 8, 8, fault);
    let result = run_keyed(&key).expect("faulted run completes");
    let fault_free = run_keyed(&keyed(
        MachineConfig::prototype(),
        Mode::Smimd,
        8,
        8,
        FaultPlan::default(),
    ))
    .expect("fault-free run");

    assert_eq!(result.fault, "box:1:0");
    assert_eq!(
        result.c_checksum, fault_free.c_checksum,
        "product unchanged"
    );
    assert_eq!(result.baseline_cycles, fault_free.cycles);
    assert!(
        result.cycles > result.baseline_cycles && result.slowdown > 1.0,
        "rerouted fault must cost cycles: {result:?}"
    );
    assert!(
        result.pe_buckets[Bucket::FaultDetour as usize] > 0,
        "slowdown attributed to fault_detour"
    );
}

#[test]
fn hidden_fault_costs_nothing() {
    // An extra-stage box fault is bypassed by the multiplexers: same cycle
    // count as fault-free, nothing charged to fault_detour.
    let fault = FaultPlan::net_single(NetFault::Box {
        stage: 0,
        box_idx: 3,
    });
    let key = keyed(MachineConfig::prototype(), Mode::Smimd, 8, 8, fault);
    let result = run_keyed(&key).expect("hidden-faulted run completes");
    assert_eq!(result.cycles, result.baseline_cycles);
    assert_eq!(result.slowdown, 1.0);
    assert_eq!(result.pe_buckets[Bucket::FaultDetour as usize], 0);
}

#[test]
fn full_machine_ring_reports_a_clean_routing_error() {
    // p = 16 uses all network lines; an interior fault makes the full ring
    // unroutable in a single pass (the ESC needs two passes for it), which
    // must surface as `RunError::Net` — not a panic, not a hang.
    let fault = FaultPlan::net_single(NetFault::Box {
        stage: 1,
        box_idx: 0,
    });
    let key = keyed(MachineConfig::prototype(), Mode::Smimd, 16, 16, fault);
    match run_keyed(&key) {
        Err(RunError::Net(msg)) => {
            assert!(
                msg.contains("blocked"),
                "routing error names the block: {msg}"
            )
        }
        other => panic!("expected RunError::Net, got {other:?}"),
    }
}

#[test]
fn dead_pe_fails_the_simd_ring_with_a_diagnosis() {
    // PE 12 of the p=4 partition [0, 4, 8, 12] never starts. The Fetch Unit
    // masks it out of release decisions (unit-tested at the machine level),
    // so the broadcast phases of the survivors proceed — until a survivor
    // waits on the ring word the dead PE will never send. That must surface
    // as a *detected* deadlock naming the starved receive, immediately, not
    // as a silent spin to the cycle limit.
    let (a, b) = paper_workload(8, 77);
    let opts = RunOptions {
        fault: FaultPlan::pe_single(12, PeFault::Dead),
        ..RunOptions::default()
    };
    let mut cfg = MachineConfig::prototype();
    cfg.max_cycles = 10_000_000;
    match run_matmul_opts(&cfg, Mode::Simd, pasm::Params::new(8, 4), &a, &b, &opts) {
        Err(RunError::Deadlock(report)) => assert!(
            report.contains("AwaitNetRx"),
            "deadlock report names the starved receive: {report}"
        ),
        other => panic!("expected a detected deadlock, got {other:?}"),
    }
}

#[test]
fn slow_pe_charges_fault_detour_and_still_computes_correctly() {
    let (a, b) = paper_workload(8, 78);
    let opts = RunOptions {
        fault: FaultPlan::pe_single(0, PeFault::Slow { extra_wait: 3 }),
        ..RunOptions::default()
    };
    let cfg = MachineConfig::prototype();
    let out = run_matmul_opts(&cfg, Mode::Smimd, pasm::Params::new(8, 4), &a, &b, &opts)
        .expect("slow-PE run completes");
    assert_eq!(out.c, a.multiply(&b), "marginal DRAM still computes right");
    let detour =
        out.run.accounts.as_ref().unwrap().pe_bucket_totals()[Bucket::FaultDetour as usize];
    assert!(detour > 0, "extra wait states charged to fault_detour");
}

#[test]
fn stuck_tx_port_fails_bounded_not_hanging() {
    let (a, b) = paper_workload(8, 79);
    let opts = RunOptions {
        fault: FaultPlan::pe_single(0, PeFault::StuckTx),
        ..RunOptions::default()
    };
    let mut cfg = MachineConfig::prototype();
    cfg.max_cycles = 2_000_000;
    for mode in [Mode::Mimd, Mode::Smimd] {
        match run_matmul_opts(&cfg, mode, pasm::Params::new(8, 4), &a, &b, &opts) {
            Err(RunError::Deadlock(_) | RunError::CycleLimit(_)) => {}
            other => panic!("{mode} with a stuck port must fail bounded, got {other:?}"),
        }
    }
}
