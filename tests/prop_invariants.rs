//! Randomized invariants across the stack: functional correctness on random
//! data, timing-model laws, and structural network properties.
//!
//! Formerly written against `proptest`; rewritten as seeded exhaustive/random
//! loops over `pasm_util::Rng` so the suite builds with no external
//! dependencies (ISSUE 2). Coverage is equivalent: the same invariants, with
//! fixed seeds so failures reproduce deterministically.

use pasm::{run_matmul, MachineConfig, Mode, Params};
use pasm_isa::timing;
use pasm_net::EscNetwork;
use pasm_prog::Matrix;
use pasm_util::Rng;

/// Every mode computes the exact reference product for arbitrary matrices.
#[test]
fn matmul_correct_on_arbitrary_data() {
    let mut rng = Rng::seed_from_u64(0x9a5e);
    let shapes = [(8usize, 4usize), (16, 4), (16, 8)];
    let modes = [Mode::Simd, Mode::Mimd, Mode::Smimd];
    for case in 0..16 {
        let (n, p) = shapes[rng.gen_range(shapes.len())];
        let mode = modes[rng.gen_range(modes.len())];
        let a = Matrix::uniform(n, rng.gen_u64());
        let b = Matrix::uniform(n, rng.gen_u64());
        let out = run_matmul(&MachineConfig::prototype(), mode, Params::new(n, p), &a, &b).unwrap();
        assert_eq!(out.c, a.multiply(&b), "case {case}: {mode} n={n} p={p}");
    }
}

/// Host reference multiply is neutral in the identity: I·B = B·I = B.
#[test]
fn identity_is_neutral() {
    let mut rng = Rng::seed_from_u64(0x1d);
    for n in [2usize, 4, 8, 16] {
        for _ in 0..16 {
            let b = Matrix::uniform(n, rng.gen_u64());
            let i = Matrix::identity(n);
            assert_eq!(i.multiply(&b), b);
            assert_eq!(b.multiply(&i), b);
        }
    }
}

/// MULU timing follows the documented 38 + 2·popcount law and its bounds —
/// exhaustively over all 16-bit multipliers.
#[test]
fn mulu_cycles_law() {
    for v in 0..=u16::MAX {
        let c = timing::mulu_cycles(v);
        assert_eq!(c, 38 + 2 * v.count_ones());
        assert!((38..=70).contains(&c));
    }
}

/// MULS timing is bounded by the same envelope and is deterministic —
/// exhaustively over all 16-bit multipliers.
#[test]
fn muls_cycles_bounds() {
    for v in 0..=u16::MAX {
        let c = timing::muls_cycles(v);
        assert!((38..=72).contains(&c), "MULS({v}) = {c}");
        assert_eq!(c, timing::muls_cycles(v));
    }
}

/// DRAM access delay is periodic in the refresh interval and bounded.
#[test]
fn refresh_delay_periodic() {
    let t = pasm_mem::MemTiming::PE_DRAM;
    let mut rng = Rng::seed_from_u64(0xd7a8);
    for _ in 0..256 {
        let now = rng.gen_u64() % 1_000_000;
        let d = t.refresh_delay(now);
        assert!(d <= t.refresh_duration);
        assert_eq!(d, t.refresh_delay(now + t.refresh_interval));
    }
}

/// Burst delay is monotone in the number of accesses.
#[test]
fn burst_delay_monotone() {
    let t = pasm_mem::MemTiming::PE_DRAM;
    let mut rng = Rng::seed_from_u64(0xb0b);
    for _ in 0..256 {
        let now = rng.gen_u64() % 10_000;
        let k = 1 + rng.gen_range(31) as u32;
        assert!(t.burst_delay(now, k + 1) >= t.burst_delay(now, k));
    }
}

/// The ESC network routes every pair, and with the extra stage enabled the
/// two candidate paths are box-disjoint in the interior stages.
#[test]
fn esc_two_paths_disjoint() {
    for src in 0..16 {
        for dst in 0..16 {
            let mut net = EscNetwork::new(16);
            net.set_extra_enabled(true);
            let a = net.route(src, dst, false).unwrap();
            let b = net.route(src, dst, true).unwrap();
            for (ha, hb) in a.hops.iter().zip(&b.hops) {
                if ha.stage != 0 && ha.stage != 4 {
                    assert_ne!(ha.box_idx, hb.box_idx, "{src}->{dst} stage {}", ha.stage);
                }
            }
        }
    }
}

/// Any single faulty box is survivable after reconfiguration.
#[test]
fn esc_single_fault_tolerance() {
    let mut rng = Rng::seed_from_u64(0xfa17);
    for _ in 0..128 {
        let stage = rng.gen_range(5) as u32;
        let box_idx = rng.gen_range(8);
        let src = rng.gen_range(16);
        let dst = rng.gen_range(16);
        let mut net = EscNetwork::new(16);
        net.set_fault(stage, box_idx, true);
        net.reconfigure_for_faults();
        let id = net.establish(src, dst);
        assert!(
            id.is_ok(),
            "{src}->{dst} with fault at ({stage},{box_idx}): {id:?}"
        );
    }
}

/// Establishing then releasing a circuit restores full availability.
#[test]
fn esc_release_restores() {
    for src in 0..16 {
        for dst in 0..16 {
            let mut net = EscNetwork::new(16);
            let id = net.establish(src, dst).unwrap();
            net.release(id).unwrap();
            assert_eq!(net.live_circuits(), 0);
            // Same circuit can be established again.
            net.establish(src, dst).unwrap();
        }
    }
}

/// Memory word writes read back, byte order big-endian.
#[test]
fn memory_word_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x3e3);
    for _ in 0..256 {
        let addr = (rng.gen_range(1000) as u32) * 2;
        let v = rng.gen_u16();
        let mut m = pasm_mem::Memory::new(4096);
        m.write_word(addr, v);
        assert_eq!(m.read_word(addr), v);
        assert_eq!(m.read_byte(addr), (v >> 8) as u8);
        assert_eq!(m.read_byte(addr + 1), v as u8);
    }
}

/// Bit-density matrices have the exact requested popcount.
#[test]
fn bit_density_popcount() {
    let mut rng = Rng::seed_from_u64(0xde5);
    for ones in 0..=16u32 {
        let m = Matrix::bit_density(4, ones, rng.gen_u64());
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(m.get(r, c).count_ones(), ones);
            }
        }
    }
}
