//! Property-based invariants across the stack: functional correctness on
//! random data, timing-model laws, and structural network properties.

use pasm::{run_matmul, MachineConfig, Mode, Params};
use pasm_isa::timing;
use pasm_net::EscNetwork;
use pasm_prog::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Every mode computes the exact reference product for arbitrary matrices.
    #[test]
    fn matmul_correct_on_arbitrary_data(
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
        np in prop::sample::select(vec![(8usize, 4usize), (16, 4), (16, 8)]),
        mode in prop::sample::select(vec![Mode::Simd, Mode::Mimd, Mode::Smimd]),
    ) {
        let (n, p) = np;
        let a = Matrix::uniform(n, seed_a);
        let b = Matrix::uniform(n, seed_b);
        let out = run_matmul(&MachineConfig::prototype(), mode, Params::new(n, p), &a, &b).unwrap();
        prop_assert_eq!(out.c, a.multiply(&b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Host reference multiply is linear in the identity: I·B = B·I = B.
    #[test]
    fn identity_is_neutral(n in prop::sample::select(vec![2usize, 4, 8, 16]), seed in any::<u64>()) {
        let b = Matrix::uniform(n, seed);
        let i = Matrix::identity(n);
        prop_assert_eq!(i.multiply(&b), b.clone());
        prop_assert_eq!(b.multiply(&i), b);
    }

    /// MULU timing follows the documented 38 + 2·popcount law and its bounds.
    #[test]
    fn mulu_cycles_law(v in any::<u16>()) {
        let c = timing::mulu_cycles(v);
        prop_assert_eq!(c, 38 + 2 * v.count_ones());
        prop_assert!((38..=70).contains(&c));
    }

    /// MULS timing is bounded by the same envelope and is 38 for zero.
    #[test]
    fn muls_cycles_bounds(v in any::<u16>()) {
        let c = timing::muls_cycles(v);
        prop_assert!((38..=72).contains(&c));
        // Negating a value leaves transitions ~similar; just check determinism.
        prop_assert_eq!(c, timing::muls_cycles(v));
    }

    /// DRAM access delay is periodic in the refresh interval and bounded.
    #[test]
    fn refresh_delay_periodic(now in 0u64..1_000_000) {
        let t = pasm_mem::MemTiming::PE_DRAM;
        let d = t.refresh_delay(now);
        prop_assert!(d <= t.refresh_duration);
        prop_assert_eq!(d, t.refresh_delay(now + t.refresh_interval));
    }

    /// Burst delay is monotone in the number of accesses.
    #[test]
    fn burst_delay_monotone(now in 0u64..10_000, k in 1u32..32) {
        let t = pasm_mem::MemTiming::PE_DRAM;
        prop_assert!(t.burst_delay(now, k + 1) >= t.burst_delay(now, k));
    }

    /// The ESC network routes every pair, and with the extra stage enabled the
    /// two candidate paths are box-disjoint in the interior stages.
    #[test]
    fn esc_two_paths_disjoint(src in 0usize..16, dst in 0usize..16) {
        let mut net = EscNetwork::new(16);
        net.set_extra_enabled(true);
        let a = net.route(src, dst, false).unwrap();
        let b = net.route(src, dst, true).unwrap();
        for (ha, hb) in a.hops.iter().zip(&b.hops) {
            if ha.stage != 0 && ha.stage != 4 {
                prop_assert_ne!(ha.box_idx, hb.box_idx);
            }
        }
    }

    /// Any single faulty box is survivable after reconfiguration.
    #[test]
    fn esc_single_fault_tolerance(stage in 0u32..5, box_idx in 0usize..8,
                                  src in 0usize..16, dst in 0usize..16) {
        let mut net = EscNetwork::new(16);
        net.set_fault(stage, box_idx, true);
        net.reconfigure_for_faults();
        let id = net.establish(src, dst);
        prop_assert!(id.is_ok(), "{src}->{dst} with fault at ({stage},{box_idx}): {id:?}");
    }

    /// Establishing then releasing a circuit restores full availability.
    #[test]
    fn esc_release_restores(src in 0usize..16, dst in 0usize..16) {
        let mut net = EscNetwork::new(16);
        let id = net.establish(src, dst).unwrap();
        net.release(id).unwrap();
        prop_assert_eq!(net.live_circuits(), 0);
        // Same circuit can be established again.
        net.establish(src, dst).unwrap();
    }

    /// Memory word writes read back, byte order big-endian.
    #[test]
    fn memory_word_roundtrip(addr in 0u32..1000, v in any::<u16>()) {
        let mut m = pasm_mem::Memory::new(4096);
        let addr = addr * 2;
        m.write_word(addr, v);
        prop_assert_eq!(m.read_word(addr), v);
        prop_assert_eq!(m.read_byte(addr), (v >> 8) as u8);
        prop_assert_eq!(m.read_byte(addr + 1), v as u8);
    }

    /// Bit-density matrices have the exact requested popcount.
    #[test]
    fn bit_density_popcount(ones in 0u32..=16, seed in any::<u64>()) {
        let m = Matrix::bit_density(4, ones, seed);
        for r in 0..4 {
            for c in 0..4 {
                prop_assert_eq!(m.get(r, c).count_ones(), ones);
            }
        }
    }
}
