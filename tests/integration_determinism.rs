//! Determinism regression (ISSUE 4 satellite): the simulator is a pure
//! function of (config, program, seed). Two runs of an identical key must
//! agree byte for byte — same cycle count, same per-bucket cycle accounts,
//! same product checksum — with accounting on or off, fault-free or faulted.
//!
//! This is the property the `pasm-server` result cache and the experiment
//! key fingerprint rely on: if it drifts, cached results silently diverge
//! from fresh ones.

use pasm::{
    paper_workload, run_keyed, run_matmul_opts, ExperimentKey, FaultPlan, MachineConfig, Mode,
    NetFault, RunOptions,
};

fn key(mode: Mode, fault: FaultPlan) -> ExperimentKey {
    ExperimentKey {
        config: MachineConfig::prototype(),
        mode,
        params: pasm::Params::new(8, if mode == Mode::Serial { 1 } else { 4 }),
        seed: 31337,
        fault,
        workload: pasm::MATMUL,
    }
}

#[test]
fn identical_keys_give_identical_results() {
    for mode in [Mode::Serial, Mode::Simd, Mode::Mimd, Mode::Smimd] {
        let first = run_keyed(&key(mode, FaultPlan::default())).expect("first run");
        let second = run_keyed(&key(mode, FaultPlan::default())).expect("second run");
        // `ExperimentResult` is `PartialEq` over every field: cycles, millis,
        // the full `pe_buckets` array, checksum, slowdown.
        assert_eq!(first, second, "{mode} runs diverged");
        assert!(first.c_checksum != 0, "checksum populated");
    }
}

#[test]
fn faulted_runs_are_deterministic_too() {
    let fault = FaultPlan::net_single(NetFault::Link {
        boundary: 2,
        line: 5,
    });
    let first = run_keyed(&key(Mode::Smimd, fault.clone())).expect("first faulted run");
    let second = run_keyed(&key(Mode::Smimd, fault)).expect("second faulted run");
    assert_eq!(first, second, "faulted runs diverged");
    assert_eq!(first.fault, "link:2:5");
    assert!(first.slowdown > 1.0, "rerouted link fault shows slowdown");
}

#[test]
fn kernel_runs_are_deterministic() {
    // Every registered workload, keyed twice: cycles, the full pe_buckets
    // array, and the output checksum must agree byte for byte — the same
    // contract the result cache relies on for matmul.
    for kernel in pasm::kernels::names() {
        for mode in [Mode::Simd, Mode::Mimd, Mode::Smimd] {
            let key = ExperimentKey {
                config: MachineConfig::prototype(),
                mode,
                params: pasm::Params::new(16, 4),
                seed: 31337,
                fault: FaultPlan::default(),
                workload: kernel,
            };
            let first = run_keyed(&key).expect("first kernel run");
            let second = run_keyed(&key).expect("second kernel run");
            assert_eq!(first, second, "{kernel} {mode} runs diverged");
            assert_eq!(first.workload, kernel);
            assert!(first.c_checksum != 0, "{kernel} {mode}: checksum populated");
        }
    }
}

#[test]
fn workload_field_keeps_matmul_fingerprints() {
    // The `workload` member hashes only when it is not the default, so every
    // pre-existing matmul fingerprint (and the server's on-disk cache) stays
    // valid; distinct kernels must still get distinct fingerprints.
    let matmul = key(Mode::Simd, FaultPlan::default());
    let mut smooth = key(Mode::Simd, FaultPlan::default());
    smooth.workload = "smooth";
    assert_ne!(matmul.fingerprint(), smooth.fingerprint());
    assert_eq!(matmul.fingerprint(), {
        // Re-built from scratch: the fingerprint is content-addressed.
        key(Mode::Simd, FaultPlan::default()).fingerprint()
    });
}

#[test]
fn accounting_never_changes_the_simulation() {
    let cfg = MachineConfig::prototype();
    let (a, b) = paper_workload(8, 31337);
    for mode in [Mode::Simd, Mode::Mimd, Mode::Smimd] {
        let with = run_matmul_opts(
            &cfg,
            mode,
            pasm::Params::new(8, 4),
            &a,
            &b,
            &RunOptions::default(),
        )
        .expect("accounted run");
        let without = run_matmul_opts(
            &cfg,
            mode,
            pasm::Params::new(8, 4),
            &a,
            &b,
            &RunOptions {
                accounting: false,
                ..RunOptions::default()
            },
        )
        .expect("unaccounted run");
        assert_eq!(with.cycles, without.cycles, "{mode}: observer effect");
        assert_eq!(with.c, without.c, "{mode}: product differs");
        assert!(with.run.accounts.is_some() && without.run.accounts.is_none());

        // And two unaccounted runs agree with each other.
        let again = run_matmul_opts(
            &cfg,
            mode,
            pasm::Params::new(8, 4),
            &a,
            &b,
            &RunOptions {
                accounting: false,
                ..RunOptions::default()
            },
        )
        .expect("second unaccounted run");
        assert_eq!(again.cycles, without.cycles);
        assert_eq!(again.c, without.c);
    }
}
