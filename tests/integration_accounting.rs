//! Integration tests of the cycle-accounting observability layer: the
//! bucket-sum invariant (`started_at + Σ buckets == finished_at` for every
//! halted component, in every mode), the paper's qualitative bucket
//! signatures, the phase-span log, and the guarantee that disabling
//! accounting changes simulated results by exactly zero.

use pasm::{paper_workload, run_matmul, run_matmul_with_accounting, MachineConfig, Mode, Params};
use pasm_machine::{Bucket, MachineAccounts};

const N: usize = 8;
const P: usize = 4;
const SEED: u64 = 1988;

fn run(mode: Mode) -> pasm::MatmulOutcome {
    let (a, b) = paper_workload(N, SEED);
    run_matmul(&MachineConfig::prototype(), mode, Params::new(N, P), &a, &b).expect("run")
}

fn accounts(out: &pasm::MatmulOutcome) -> &MachineAccounts {
    out.run.accounts.as_ref().expect("accounting on by default")
}

#[test]
fn buckets_sum_to_busy_window_in_every_mode() {
    for mode in Mode::ALL {
        let out = run(mode);
        let acc = accounts(&out);
        let mut active = 0;
        for (i, trace) in out.run.pe.iter().enumerate() {
            if trace.instrs == 0 {
                continue;
            }
            active += 1;
            assert_eq!(
                acc.pe[i].started_at + acc.pe[i].total(),
                trace.finished_at,
                "{mode} pe{i}: every cycle of the busy window must land in \
                 exactly one bucket"
            );
        }
        assert!(active >= 1, "{mode}: no active PEs");
        for (i, trace) in out.run.mc.iter().enumerate() {
            if trace.instrs == 0 {
                continue;
            }
            assert_eq!(
                acc.mc[i].started_at + acc.mc[i].total(),
                trace.finished_at,
                "{mode} mc{i}: bucket-sum invariant"
            );
        }
    }
}

#[test]
fn barrier_wait_signature_matches_the_paper() {
    for mode in Mode::ALL {
        let out = run(mode);
        let barrier: u64 = accounts(&out)
            .pe
            .iter()
            .map(|a| a.bucket(Bucket::BarrierWait))
            .sum();
        match mode {
            // Serial has nothing to synchronize with; MIMD synchronizes by
            // polling, which burns compute cycles, not barrier waits.
            Mode::Serial | Mode::Mimd => {
                assert_eq!(barrier, 0, "{mode}: unexpected barrier_wait {barrier}")
            }
            Mode::Simd | Mode::Smimd => {
                assert!(barrier > 0, "{mode}: expected nonzero barrier_wait")
            }
        }
    }
}

#[test]
fn multiply_variance_is_charged_in_every_mode() {
    for mode in Mode::ALL {
        let out = run(mode);
        let variance: u64 = accounts(&out)
            .pe
            .iter()
            .map(|a| a.bucket(Bucket::MultiplyVariance))
            .sum();
        assert!(
            variance > 0,
            "{mode}: data-dependent multiplies must charge variance"
        );
    }
}

#[test]
fn disabling_accounting_changes_nothing_but_the_breakdowns() {
    let (a, b) = paper_workload(N, SEED);
    for mode in Mode::ALL {
        let cfg = MachineConfig::prototype();
        let params = Params::new(N, P);
        let on = run_matmul_with_accounting(&cfg, mode, params, &a, &b, true).expect("on");
        let off = run_matmul_with_accounting(&cfg, mode, params, &a, &b, false).expect("off");
        assert_eq!(on.cycles, off.cycles, "{mode}: makespan must not move");
        assert_eq!(on.c, off.c, "{mode}: product must not move");
        assert!(on.run.accounts.is_some());
        assert!(off.run.accounts.is_none());
        for (t_on, t_off) in on.run.pe.iter().zip(off.run.pe.iter()) {
            assert_eq!(t_on.finished_at, t_off.finished_at, "{mode}: PE timing");
            assert_eq!(t_on.instrs, t_off.instrs, "{mode}: PE instruction count");
        }
        assert!(off.span_log().is_empty(), "no accounts, no spans");
    }
}

#[test]
fn span_log_names_the_program_phases() {
    let out = run(Mode::Simd);
    let log = out.span_log();
    assert!(!log.is_empty());
    for phase in ["clear_loop", "mac_loop", "recirculation_transfer"] {
        assert!(
            log.total_cycles(phase) > 0,
            "SIMD run should record a {phase} span"
        );
    }

    // The JSONL form round-trips: one well-formed object per line.
    let jsonl = log.to_jsonl();
    assert_eq!(jsonl.lines().count(), log.len());
    for line in jsonl.lines() {
        let obj = pasm_util::json::parse(line).expect("valid JSON");
        for key in ["source", "name", "start", "end", "cycles"] {
            assert!(obj.get(key).is_some(), "span object missing {key:?}");
        }
    }
}

#[test]
fn experiment_result_carries_the_bucket_totals() {
    let key = pasm::ExperimentKey {
        config: MachineConfig::prototype(),
        mode: Mode::Simd,
        params: Params::new(N, P),
        seed: SEED,
        fault: Default::default(),
        workload: pasm::MATMUL,
    };
    let result = pasm::run_keyed(&key).expect("run");
    let total: u64 = result.pe_buckets.iter().sum();
    assert!(total > 0, "keyed runs account by default");
    let json = pasm_util::ToJson::to_json(&result);
    let buckets = json.get("cycle_buckets").expect("cycle_buckets in JSON");
    for name in pasm_machine::BUCKET_NAMES {
        assert!(buckets.get(name).is_some(), "bucket {name:?} in JSON");
    }
}
