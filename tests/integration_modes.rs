//! Cross-crate timing-relationship tests: the qualitative claims of the paper
//! must hold on the simulated prototype at small problem sizes (kept small so
//! the suite stays fast in debug builds).

use pasm::{paper_workload, run_matmul, Breakdown, Mode, Params};
use pasm_machine::MachineConfig;
use pasm_prog::codegen::{PHASE_COMM, PHASE_MUL};

fn cfg() -> MachineConfig {
    MachineConfig::prototype()
}

fn cycles(mode: Mode, n: usize, p: usize, extra: usize) -> u64 {
    let (a, b) = paper_workload(n, 1988);
    run_matmul(&cfg(), mode, Params::new(n, p).with_extra(extra), &a, &b)
        .unwrap()
        .cycles
}

#[test]
fn simd_beats_smimd_with_one_multiply() {
    // Paper §7: without added multiplies the SIMD version is faster — the MC
    // hides control flow and queue fetches beat DRAM.
    assert!(cycles(Mode::Simd, 32, 4, 0) < cycles(Mode::Smimd, 32, 4, 0));
}

#[test]
fn smimd_beats_simd_with_many_added_multiplies() {
    // Paper §8: enough data-dependent multiplies and decoupling wins.
    assert!(cycles(Mode::Smimd, 32, 4, 30) < cycles(Mode::Simd, 32, 4, 30));
}

#[test]
fn smimd_beats_mimd() {
    // Paper §5.3: barrier communication costs less than polled communication.
    assert!(cycles(Mode::Smimd, 32, 4, 0) < cycles(Mode::Mimd, 32, 4, 0));
}

#[test]
fn parallel_beats_serial_by_roughly_p() {
    let serial = cycles(Mode::Serial, 32, 1, 0);
    for mode in Mode::PARALLEL {
        let t = cycles(mode, 32, 4, 0);
        let speedup = serial as f64 / t as f64;
        assert!(
            speedup > 2.0 && speedup < 4.8,
            "{mode}: speedup {speedup:.2} out of the plausible band"
        );
    }
}

#[test]
fn mimd_to_smimd_gap_shrinks_with_n() {
    // Paper §7: T_MIMD / T_S/MIMD decreases as n increases — the only
    // difference is communication, which is O(n²) against O(n³/p) compute.
    let r8 = cycles(Mode::Mimd, 8, 4, 0) as f64 / cycles(Mode::Smimd, 8, 4, 0) as f64;
    let r32 = cycles(Mode::Mimd, 32, 4, 0) as f64 / cycles(Mode::Smimd, 32, 4, 0) as f64;
    assert!(r32 < r8, "ratio must shrink: n=8 {r8:.3} vs n=32 {r32:.3}");
}

#[test]
fn communication_dominates_small_n_compute_dominates_large_n() {
    let (a, b) = paper_workload(8, 1);
    let small = run_matmul(&cfg(), Mode::Smimd, Params::new(8, 4), &a, &b).unwrap();
    let bs = Breakdown::of(&small);
    let (a, b) = paper_workload(64, 1);
    let large = run_matmul(&cfg(), Mode::Smimd, Params::new(64, 4), &a, &b).unwrap();
    let bl = Breakdown::of(&large);
    let comm_share_small = bs.communication as f64 / bs.total as f64;
    let comm_share_large = bl.communication as f64 / bl.total as f64;
    assert!(
        comm_share_small > comm_share_large,
        "communication share must fall with n: {comm_share_small:.3} vs {comm_share_large:.3}"
    );
    assert!(bl.multiply > bl.communication, "multiply dominates at n=64");
}

#[test]
fn mimd_pays_more_communication_than_smimd() {
    let (a, b) = paper_workload(16, 1);
    let mimd = run_matmul(&cfg(), Mode::Mimd, Params::new(16, 4), &a, &b).unwrap();
    let smimd = run_matmul(&cfg(), Mode::Smimd, Params::new(16, 4), &a, &b).unwrap();
    assert!(
        mimd.run.phase_max(PHASE_COMM as usize) > smimd.run.phase_max(PHASE_COMM as usize),
        "polling must cost more than barrier communication"
    );
    // Compute sections are the same code: times must be close.
    let m = mimd.run.phase_max(PHASE_MUL as usize) as f64;
    let s = smimd.run.phase_max(PHASE_MUL as usize) as f64;
    assert!(
        (m - s).abs() / s < 0.05,
        "multiply sections nearly equal: {m} vs {s}"
    );
}

#[test]
fn added_multiplies_hurt_simd_more_than_smimd() {
    // The decoupling effect: the same added work costs SIMD the per-step max.
    let simd_delta = cycles(Mode::Simd, 16, 4, 10) - cycles(Mode::Simd, 16, 4, 0);
    let smimd_delta = cycles(Mode::Smimd, 16, 4, 10) - cycles(Mode::Smimd, 16, 4, 0);
    assert!(
        simd_delta > smimd_delta,
        "SIMD delta {simd_delta} must exceed S/MIMD delta {smimd_delta}"
    );
}

#[test]
fn simd_queue_stays_mostly_nonempty() {
    // Precondition for the control-overlap benefit (paper §5.1): the MC must
    // supply instructions faster than the PEs drain them.
    let (a, b) = paper_workload(32, 1);
    let out = run_matmul(&cfg(), Mode::Simd, Params::new(32, 4), &a, &b).unwrap();
    let fu = &out.run.fu[0];
    assert!(fu.entries > 1000);
    assert!(
        (fu.empty_stall_cycles as f64) < 0.05 * out.cycles as f64,
        "queue-empty stalls should be rare: {} of {}",
        fu.empty_stall_cycles,
        out.cycles
    );
}

#[test]
fn all_pes_do_the_same_number_of_multiplies() {
    let (a, b) = paper_workload(16, 1);
    for mode in Mode::PARALLEL {
        let out = run_matmul(&cfg(), mode, Params::new(16, 4), &a, &b).unwrap();
        let counts: Vec<u64> = out
            .run
            .pe
            .iter()
            .filter(|t| t.instrs > 0)
            .map(|t| t.mul_count)
            .collect();
        assert_eq!(counts.len(), 4, "{mode}");
        assert!(counts.iter().all(|&c| c == counts[0]), "{mode}: {counts:?}");
        // n³/p multiplies each.
        assert_eq!(counts[0], (16u64 * 16 * 16) / 4, "{mode}");
    }
}

#[test]
fn heavier_multipliers_slow_simd_down() {
    // Give some columns maximal-popcount multipliers: every MULU by them takes
    // the maximum 70 cycles and, in lockstep, everyone pays it.
    use pasm_prog::Matrix;
    let n = 16;
    let a = Matrix::identity(n);
    let uniform = Matrix::bit_density(n, 8, 3);
    let heavy = Matrix::from_fn(n, |r, c| if c < 4 { 0xFFFF } else { uniform.get(r, c) });
    let flat = run_matmul(&cfg(), Mode::Simd, Params::new(n, 4), &a, &uniform).unwrap();
    let skew = run_matmul(&cfg(), Mode::Simd, Params::new(n, 4), &a, &heavy).unwrap();
    assert!(skew.cycles > flat.cycles);
}
